package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountingAddRemove(t *testing.T) {
	c, err := NewCounting(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		c.AddUint64(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !c.ContainsUint64(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	// Remove the even keys; odd keys must still be present.
	for i := uint64(0); i < 1000; i += 2 {
		if err := c.RemoveUint64(i); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	for i := uint64(1); i < 1000; i += 2 {
		if !c.ContainsUint64(i) {
			t.Fatalf("remove of evens introduced false negative for odd key %d", i)
		}
	}
	if c.Count() != 500 {
		t.Errorf("count = %d, want 500", c.Count())
	}
}

func TestCountingRemoveAbsent(t *testing.T) {
	c, err := NewCounting(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	c.AddUint64(1)
	if err := c.RemoveUint64(99999); err == nil {
		t.Error("removing an absent key should be an error")
	}
	if !c.ContainsUint64(1) {
		t.Error("failed remove must not corrupt the filter")
	}
}

func TestCountingFPP(t *testing.T) {
	const n = 5000
	c, err := NewCounting(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		c.AddUint64(i)
	}
	falsePos := 0
	const probes = 50000
	for i := uint64(0); i < probes; i++ {
		if c.ContainsUint64(n + 1000 + i) {
			falsePos++
		}
	}
	if measured := float64(falsePos) / probes; measured > 0.02 {
		t.Errorf("measured fpp %g exceeds 2x design 0.01", measured)
	}
}

func TestCountingSaturation(t *testing.T) {
	// Force saturation by hammering one key; it must remain present even
	// after an equal number of removes (saturated counters stick).
	c := NewCountingWithParams(Params{Bits: 128, Hashes: 3})
	for i := 0; i < 100; i++ {
		c.AddUint64(7)
	}
	for i := 0; i < 100; i++ {
		if err := c.RemoveUint64(7); err != nil {
			t.Fatal(err)
		}
	}
	if !c.ContainsUint64(7) {
		t.Error("saturated counters must never be decremented to zero")
	}
}

func TestCountingErrors(t *testing.T) {
	if _, err := NewCounting(0, 0.01); err == nil {
		t.Error("zero keys should be rejected")
	}
	c := NewCountingWithParams(Params{})
	if c.slots == 0 {
		t.Error("zero params should default to a usable filter")
	}
}

func TestScalableGrowsAndBoundsFPP(t *testing.T) {
	s, err := NewScalable(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000 // 10x initial capacity
	for i := uint64(0); i < n; i++ {
		if err := s.Add(beUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stages() < 3 {
		t.Errorf("expected multiple stages after 10x overload, got %d", s.Stages())
	}
	for i := uint64(0); i < n; i++ {
		if !s.ContainsUint64(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	falsePos := 0
	const probes = 50000
	for i := uint64(0); i < probes; i++ {
		if s.ContainsUint64(n + 1000 + i) {
			falsePos++
		}
	}
	measured := float64(falsePos) / probes
	if measured > 0.02 {
		t.Errorf("measured compound fpp %g exceeds 2x bound 0.01", measured)
	}
	if b := s.CompoundFPPBound(); b > 0.0101 {
		t.Errorf("analytical compound bound %g exceeds configured 0.01", b)
	}
}

func TestScalableErrors(t *testing.T) {
	if _, err := NewScalable(0, 0.01); err == nil {
		t.Error("zero initial keys should be rejected")
	}
	if _, err := NewScalable(10, 0); err == nil {
		t.Error("zero fpp should be rejected")
	}
}

// Property: counting filter add→remove→absent keys never produce false
// negatives for keys that remain.
func TestQuickCountingNoFalseNegativeAfterChurn(t *testing.T) {
	c, err := NewCounting(4096, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(7))
	prop := func(key uint64) bool {
		c.AddUint64(key)
		kept[key] = true
		// Randomly remove an earlier key.
		if len(kept) > 1 && rng.Intn(2) == 0 {
			for k := range kept {
				if k != key {
					if err := c.RemoveUint64(k); err != nil {
						return false
					}
					delete(kept, k)
					break
				}
			}
		}
		for k := range kept {
			if !c.ContainsUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f, _ := New(uint64(b.N)+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64(uint64(i))
	}
}

func BenchmarkFilterContains(b *testing.B) {
	f, _ := New(100000, 0.01)
	for i := uint64(0); i < 100000; i++ {
		f.AddUint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsUint64(uint64(i))
	}
}
