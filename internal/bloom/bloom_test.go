package bloom

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeysForBitsMatchesEquation1(t *testing.T) {
	// 4KB page = 32768 bits, fpp=0.01: n = -32768*ln²2/ln(0.01) ≈ 3418.
	got := KeysForBits(32768, 0.01)
	want := uint64(-32768 * Ln2Squared / math.Log(0.01))
	if got != want {
		t.Fatalf("KeysForBits(32768, 0.01) = %d, want %d", got, want)
	}
	if got < 3400 || got > 3440 {
		t.Fatalf("KeysForBits(32768, 0.01) = %d, expected ≈3418", got)
	}
}

func TestKeysBitsInverse(t *testing.T) {
	for _, fpp := range []float64{0.2, 0.1, 0.01, 1e-3, 1e-6, 1e-15} {
		for _, keys := range []uint64{1, 10, 1000, 100000} {
			bits := BitsForKeys(keys, fpp)
			back := KeysForBits(bits, fpp)
			// Rounding bits up can only increase capacity.
			if back < keys {
				t.Errorf("fpp=%g keys=%d: bits=%d gives capacity %d < keys", fpp, keys, bits, back)
			}
			// And not by more than one key plus rounding slack.
			if back > keys+keys/100+2 {
				t.Errorf("fpp=%g keys=%d: round trip inflated to %d", fpp, keys, back)
			}
		}
	}
}

func TestKeysForBitsEdgeCases(t *testing.T) {
	if KeysForBits(0, 0.01) != 0 {
		t.Error("zero bits should index zero keys")
	}
	if KeysForBits(100, 0) != 0 || KeysForBits(100, 1) != 0 {
		t.Error("out-of-domain fpp should return 0")
	}
	if BitsForKeys(0, 0.01) != 0 {
		t.Error("zero keys need zero bits")
	}
}

func TestOptimalHashes(t *testing.T) {
	// m/n = 10 bits per key → k ≈ 10·ln2 ≈ 7.
	if k := OptimalHashes(10000, 1000); k != 7 {
		t.Errorf("OptimalHashes(10000,1000) = %d, want 7", k)
	}
	if k := OptimalHashes(100, 0); k != 1 {
		t.Errorf("OptimalHashes with zero keys = %d, want 1", k)
	}
	if k := OptimalHashes(1, 1000); k != 1 {
		t.Errorf("OptimalHashes must be at least 1, got %d", k)
	}
}

func TestExpectedFPP(t *testing.T) {
	if p := ExpectedFPP(0, 3, 10); p != 1 {
		t.Errorf("zero bits: fpp = %g, want 1", p)
	}
	if p := ExpectedFPP(1000, 3, 0); p != 0 {
		t.Errorf("empty filter: fpp = %g, want 0", p)
	}
	// At design load the expected fpp should be close to the target.
	keys := uint64(1000)
	fpp := 0.01
	p, err := ParamsForKeys(keys, fpp, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := ExpectedFPP(p.Bits, p.Hashes, keys)
	if got > fpp*1.25 || got < fpp/4 {
		t.Errorf("ExpectedFPP at design load = %g, want ≈%g", got, fpp)
	}
}

func TestDriftedFPPEquation14(t *testing.T) {
	// From the paper: starting at fpp=0.01%, 1% more elements gives
	// new_fpp ≈ 0.011%, 10% more gives ≈ 0.023%... paper says ≈0.23% for
	// 10x reading; check the formula values directly.
	got := DriftedFPP(1e-4, 0.01)
	want := math.Pow(1e-4, 1/1.01)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DriftedFPP(1e-4, 0.01) = %g, want %g", got, want)
	}
	// Monotonic in insert ratio.
	prev := DriftedFPP(1e-3, 0)
	for r := 0.01; r < 6; r += 0.05 {
		cur := DriftedFPP(1e-3, r)
		if cur < prev {
			t.Fatalf("DriftedFPP not monotone at ratio %g: %g < %g", r, cur, prev)
		}
		prev = cur
	}
	// Converges towards 1 for huge insert ratios.
	if DriftedFPP(1e-3, 1e6) < 0.99 {
		t.Error("DriftedFPP should approach 1 as inserts dominate")
	}
	// No-op outside the domain.
	if DriftedFPP(0.5, -1) != 0.5 || DriftedFPP(0, 1) != 0 {
		t.Error("DriftedFPP should pass through out-of-domain inputs")
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f, err := New(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.AddUint64(keys[i])
	}
	for _, k := range keys {
		if !f.ContainsUint64(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFilterFPPNearDesign(t *testing.T) {
	const n = 20000
	for _, fpp := range []float64{0.1, 0.01, 0.001} {
		f, err := New(n, fpp)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < n; i++ {
			f.AddUint64(i)
		}
		falsePos := 0
		const probes = 100000
		for i := uint64(0); i < probes; i++ {
			if f.ContainsUint64(n + 1000 + i) {
				falsePos++
			}
		}
		measured := float64(falsePos) / probes
		if measured > fpp*2 {
			t.Errorf("fpp=%g: measured %g exceeds 2x design", fpp, measured)
		}
	}
}

func TestSplitPropertySection3(t *testing.T) {
	// Property 1 of Section 3: S filters of M/S bits holding N/S keys each
	// have the same fpp as one M-bit filter with N keys.
	const (
		totalKeys = 8000
		s         = 8
		fpp       = 0.01
	)
	big, err := New(totalKeys, fpp)
	if err != nil {
		t.Fatal(err)
	}
	smalls := make([]*Filter, s)
	for i := range smalls {
		smalls[i], err = New(totalKeys/s, fpp)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < totalKeys; i++ {
		big.AddUint64(i)
		smalls[i%s].AddUint64(i)
	}
	// Bit budgets should match within rounding: S small filters use about
	// as many bits as the big one.
	var smallBits uint64
	for _, f := range smalls {
		smallBits += f.Bits()
	}
	ratio := float64(smallBits) / float64(big.Bits())
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("split filters use %d bits vs %d for one filter (ratio %g)", smallBits, big.Bits(), ratio)
	}
	// Measured fpp of each small filter stays near design.
	for i, f := range smalls {
		falsePos := 0
		const probes = 20000
		for j := uint64(0); j < probes; j++ {
			if f.ContainsUint64(totalKeys + 5000 + j) {
				falsePos++
			}
		}
		measured := float64(falsePos) / probes
		if measured > fpp*2.5 {
			t.Errorf("sub-filter %d: measured fpp %g exceeds 2.5x design %g", i, measured, fpp)
		}
	}
}

func TestFilterUnion(t *testing.T) {
	p, err := ParamsForKeys(2000, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := NewWithParams(p)
	b := NewWithParams(p)
	for i := uint64(0); i < 1000; i++ {
		a.AddUint64(i)
		b.AddUint64(100000 + i)
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if !a.ContainsUint64(i) || !a.ContainsUint64(100000+i) {
			t.Fatalf("union lost key %d", i)
		}
	}
	if a.Count() != 2000 {
		t.Errorf("union count = %d, want 2000", a.Count())
	}
	// Geometry mismatch is an error.
	c := NewWithParams(Params{Bits: 64, Hashes: 2})
	if err := a.Union(c); err == nil {
		t.Error("union with mismatched geometry should fail")
	}
}

func TestFilterResetAndFillRatio(t *testing.T) {
	f, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillRatio() != 0 {
		t.Error("fresh filter should have zero fill ratio")
	}
	for i := uint64(0); i < 1000; i++ {
		f.AddUint64(i)
	}
	// At design load with optimal k, fill ratio ≈ 0.5.
	if r := f.FillRatio(); r < 0.4 || r > 0.6 {
		t.Errorf("fill ratio at design load = %g, want ≈0.5", r)
	}
	f.Reset()
	if f.FillRatio() != 0 || f.Count() != 0 {
		t.Error("reset should clear bits and count")
	}
	if f.ContainsUint64(1) {
		// Possible only if reset failed; a fresh filter can't match.
		t.Error("reset filter should not contain anything")
	}
}

func TestFilterMarshalRoundTrip(t *testing.T) {
	f, err := New(5000, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		f.AddUint64(i * 3)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Count() != f.Count() {
		t.Fatal("round trip changed geometry")
	}
	for i := uint64(0); i < 5000; i++ {
		if !g.ContainsUint64(i * 3) {
			t.Fatalf("round trip lost key %d", i*3)
		}
	}
	if err := g.UnmarshalBinary(data[:10]); err == nil {
		t.Error("short buffer should fail to unmarshal")
	}
	if err := g.UnmarshalBinary(data[:30]); err == nil {
		t.Error("truncated bit array should fail to unmarshal")
	}
}

func TestParamsErrors(t *testing.T) {
	if _, err := ParamsForKeys(0, 0.01, 0); err == nil {
		t.Error("zero keys should be rejected")
	}
	if _, err := ParamsForKeys(10, 1.5, 0); err == nil {
		t.Error("fpp > 1 should be rejected")
	}
	if _, err := ParamsForBits(0, 0.01, 0); err == nil {
		t.Error("zero bits should be rejected")
	}
	if _, err := New(0, 0.5); err == nil {
		t.Error("New with zero keys should fail")
	}
	// Tiny budget still yields at least capacity 1.
	p, err := ParamsForBits(8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Keys < 1 {
		t.Error("ParamsForBits should guarantee at least one key of capacity")
	}
}

// Property: no false negatives, for arbitrary byte-string keys.
func TestQuickNoFalseNegatives(t *testing.T) {
	f, err := New(4096, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(key []byte) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equation 1 round trip never loses capacity.
func TestQuickEquation1RoundTrip(t *testing.T) {
	prop := func(rawKeys uint32, rawFpp uint16) bool {
		keys := uint64(rawKeys%1000000) + 1
		fpp := (float64(rawFpp%9998) + 1) / 10000 // (0, 1)
		bits := BitsForKeys(keys, fpp)
		return KeysForBits(bits, fpp) >= keys
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the uint64 convenience wrappers agree with the byte-slice API.
func TestQuickUint64Wrappers(t *testing.T) {
	f, err := New(4096, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(key uint64) bool {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], key)
		f.AddUint64(key)
		return f.Contains(buf[:]) && f.ContainsUint64(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
