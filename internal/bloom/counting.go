package bloom

import (
	"fmt"
	"math"
)

// CountingFilter is a counting Bloom filter: each position holds a small
// counter instead of a single bit, so keys can be removed. Section 7 of
// the paper discusses deletable Bloom filter variants as the alternative
// to letting deletes degrade the false positive probability; BF-Tree
// leaves can be configured to use counting filters for update-heavy
// workloads (see the deletes ablation).
//
// Counters are 4 bits wide, the classic choice: the probability of any
// counter exceeding 15 under optimal hashing is below 1e-15 per key.
// Counters saturate at 15 rather than overflowing; a saturated counter is
// never decremented, which preserves the no-false-negative guarantee at
// the cost of a marginally higher false positive rate after heavy churn.
type CountingFilter struct {
	counters []uint8 // two 4-bit counters per byte
	slots    uint64
	hashes   int
	count    uint64
}

// NewCounting creates a counting filter sized for the given key count and
// false positive probability. It uses the same Equation 1 geometry as the
// plain filter but spends 4 bits per position.
func NewCounting(keys uint64, fpp float64) (*CountingFilter, error) {
	p, err := ParamsForKeys(keys, fpp, 0)
	if err != nil {
		return nil, err
	}
	return NewCountingWithParams(p), nil
}

// NewCountingWithParams creates a counting filter with explicit geometry;
// p.Bits is interpreted as the number of counter slots.
func NewCountingWithParams(p Params) *CountingFilter {
	slots := p.Bits
	if slots == 0 {
		slots = 64
	}
	h := p.Hashes
	if h < 1 {
		h = 1
	}
	return &CountingFilter{
		counters: make([]uint8, (slots+1)/2),
		slots:    slots,
		hashes:   h,
	}
}

const countingSaturation = 15

func (c *CountingFilter) get(idx uint64) uint8 {
	b := c.counters[idx/2]
	if idx%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (c *CountingFilter) set(idx uint64, v uint8) {
	b := c.counters[idx/2]
	if idx%2 == 0 {
		b = (b &^ 0x0f) | (v & 0x0f)
	} else {
		b = (b &^ 0xf0) | (v << 4)
	}
	c.counters[idx/2] = b
}

// Add inserts a key, incrementing its k counters (saturating at 15).
func (c *CountingFilter) Add(key []byte) {
	h1, h2 := baseHashes(key)
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.slots
		if v := c.get(idx); v < countingSaturation {
			c.set(idx, v+1)
		}
	}
	c.count++
}

// AddUint64 inserts a uint64 key in big-endian encoding.
func (c *CountingFilter) AddUint64(key uint64) {
	c.Add(beUint64(key))
}

// Remove deletes a key, decrementing its k counters. Removing a key that
// was never added corrupts the filter (it may introduce false negatives
// for other keys), exactly as in the literature; callers must only remove
// keys they previously added. Saturated counters are left untouched.
func (c *CountingFilter) Remove(key []byte) error {
	h1, h2 := baseHashes(key)
	// First verify membership so that removing an absent key is an error
	// instead of silent corruption.
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.slots
		if c.get(idx) == 0 {
			return fmt.Errorf("%w: removing absent key", ErrInvalidParams)
		}
	}
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.slots
		if v := c.get(idx); v > 0 && v < countingSaturation {
			c.set(idx, v-1)
		}
	}
	if c.count > 0 {
		c.count--
	}
	return nil
}

// RemoveUint64 deletes a uint64 key in big-endian encoding.
func (c *CountingFilter) RemoveUint64(key uint64) error {
	return c.Remove(beUint64(key))
}

// Contains reports whether the key may be in the set.
func (c *CountingFilter) Contains(key []byte) bool {
	h1, h2 := baseHashes(key)
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.slots
		if c.get(idx) == 0 {
			return false
		}
	}
	return true
}

// ContainsUint64 tests a uint64 key in big-endian encoding.
func (c *CountingFilter) ContainsUint64(key uint64) bool {
	return c.Contains(beUint64(key))
}

// Count returns the net number of keys (adds minus removes).
func (c *CountingFilter) Count() uint64 { return c.count }

// Raw exposes the underlying counter array (aliased, not copied), for
// embedders that pack many filters into one page.
func (c *CountingFilter) Raw() []uint8 { return c.counters }

// CountingFromRaw reconstructs a counting filter around an existing
// counter array, the inverse of Raw. The slice is aliased.
func CountingFromRaw(counters []uint8, slots uint64, hashes int, count uint64) *CountingFilter {
	return &CountingFilter{counters: counters, slots: slots, hashes: hashes, count: count}
}

// SizeBytes returns the memory footprint of the counter array.
func (c *CountingFilter) SizeBytes() uint64 { return uint64(len(c.counters)) }

func beUint64(key uint64) []byte {
	return []byte{
		byte(key >> 56), byte(key >> 48), byte(key >> 40), byte(key >> 32),
		byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key),
	}
}

// ScalableFilter is a scalable Bloom filter (Almeida et al., cited in
// Section 2 of the paper): a sequence of plain filters of geometrically
// growing capacity and geometrically tightening false positive
// probability, so that the compound false positive probability stays
// below the configured bound regardless of how many keys are added.
type ScalableFilter struct {
	stages      []*Filter
	stageKeys   []uint64
	initialKeys uint64
	fpp         float64
	growth      float64 // capacity growth factor per stage
	tighten     float64 // fpp tightening ratio per stage
	count       uint64
}

// NewScalable creates a scalable filter whose compound false positive
// probability stays below fpp. initialKeys sizes the first stage.
func NewScalable(initialKeys uint64, fpp float64) (*ScalableFilter, error) {
	if initialKeys == 0 || fpp <= 0 || fpp >= 1 {
		return nil, fmt.Errorf("%w: keys=%d fpp=%g", ErrInvalidParams, initialKeys, fpp)
	}
	return &ScalableFilter{
		initialKeys: initialKeys,
		fpp:         fpp,
		growth:      2,
		tighten:     0.5,
	}, nil
}

func (s *ScalableFilter) addStage() error {
	i := len(s.stages)
	keys := uint64(float64(s.initialKeys) * math.Pow(s.growth, float64(i)))
	// The stage fpp series fpp·r^i (r<1) sums to fpp/(1-r); scale so the
	// compound bound is the configured fpp.
	stageFPP := s.fpp * (1 - s.tighten) * math.Pow(s.tighten, float64(i))
	f, err := New(keys, stageFPP)
	if err != nil {
		return err
	}
	s.stages = append(s.stages, f)
	s.stageKeys = append(s.stageKeys, keys)
	return nil
}

// Add inserts a key, opening a new stage when the current one reaches its
// design capacity.
func (s *ScalableFilter) Add(key []byte) error {
	if len(s.stages) == 0 {
		if err := s.addStage(); err != nil {
			return err
		}
	}
	last := len(s.stages) - 1
	if s.stages[last].Count() >= s.stageKeys[last] {
		if err := s.addStage(); err != nil {
			return err
		}
		last++
	}
	s.stages[last].Add(key)
	s.count++
	return nil
}

// AddUint64 inserts a uint64 key in big-endian encoding.
func (s *ScalableFilter) AddUint64(key uint64) error {
	return s.Add(beUint64(key))
}

// Contains reports whether the key may be in the set; it checks every
// stage.
func (s *ScalableFilter) Contains(key []byte) bool {
	for _, f := range s.stages {
		if f.Contains(key) {
			return true
		}
	}
	return false
}

// ContainsUint64 tests a uint64 key in big-endian encoding.
func (s *ScalableFilter) ContainsUint64(key uint64) bool {
	return s.Contains(beUint64(key))
}

// Count returns the number of keys added.
func (s *ScalableFilter) Count() uint64 { return s.count }

// Stages returns the number of underlying filters.
func (s *ScalableFilter) Stages() int { return len(s.stages) }

// SizeBytes returns the total footprint of all stages.
func (s *ScalableFilter) SizeBytes() uint64 {
	var total uint64
	for _, f := range s.stages {
		total += f.SizeBytes()
	}
	return total
}

// CompoundFPPBound returns the analytical upper bound on the compound
// false positive probability across all stages.
func (s *ScalableFilter) CompoundFPPBound() float64 {
	var sum float64
	for i := range s.stages {
		sum += s.fpp * (1 - s.tighten) * math.Pow(s.tighten, float64(i))
	}
	return sum
}
