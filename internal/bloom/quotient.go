package bloom

import (
	"fmt"
	"math"
)

// QuotientFilter is the quotient filter of Bender et al. ("Don't Thrash:
// How to Cache Your Hash on Flash", cited as [7] by the paper), one of
// the Section 7 alternatives to plain Bloom filters: it stores p-bit
// fingerprints in 2^q buckets of r-bit remainders (p = q + r) with three
// metadata bits per slot, and answers membership with false positive
// probability ≈ 2^-r at moderate load. This prototype implements insert
// and lookup; for deletable BF-leaves see CountingFilter and
// DeletableFilter.
//
// Compared with a counting filter (the other deletable option), a
// quotient filter needs r+3 bits per stored key instead of 4 bits per
// array position, and its entries are contiguous runs — the property
// that makes it flash-friendly in the original paper.
type QuotientFilter struct {
	qbits     uint // log2(buckets)
	rbits     uint // remainder bits
	mask      uint64
	remainder []uint64 // r-bit remainders, one per slot
	occupied  []bool   // canonical bucket has at least one fingerprint
	cont      []bool   // slot continues the previous slot's run
	shifted   []bool   // slot holds a fingerprint shifted from its bucket
	count     uint64
}

// NewQuotient creates a quotient filter sized for n keys at false
// positive probability fpp. Buckets are sized to keep the load factor
// at or below 3/4, where cluster lengths stay short.
func NewQuotient(n uint64, fpp float64) (*QuotientFilter, error) {
	if n == 0 || fpp <= 0 || fpp >= 1 {
		return nil, fmt.Errorf("%w: n=%d fpp=%g", ErrInvalidParams, n, fpp)
	}
	// Slots ≥ 4n/3, rounded to a power of two.
	q := uint(1)
	for (uint64(1) << q) < n*4/3+1 {
		q++
	}
	// fpp ≈ load · 2^-r  →  r = ceil(log2(load/fpp)); use load=3/4.
	r := uint(math.Ceil(math.Log2(0.75 / fpp)))
	if r < 1 {
		r = 1
	}
	if q+r > 64 {
		return nil, fmt.Errorf("%w: fingerprint q+r=%d exceeds 64 bits", ErrInvalidParams, q+r)
	}
	size := uint64(1) << q
	return &QuotientFilter{
		qbits:     q,
		rbits:     r,
		mask:      size - 1,
		remainder: make([]uint64, size),
		occupied:  make([]bool, size),
		cont:      make([]bool, size),
		shifted:   make([]bool, size),
	}, nil
}

// fingerprint maps a key to its (quotient, remainder) pair.
func (f *QuotientFilter) fingerprint(key []byte) (uint64, uint64) {
	h, _ := baseHashes(key)
	fp := h & ((uint64(1) << (f.qbits + f.rbits)) - 1)
	return fp >> f.rbits, fp & ((uint64(1) << f.rbits) - 1)
}

func (f *QuotientFilter) next(i uint64) uint64 { return (i + 1) & f.mask }
func (f *QuotientFilter) prev(i uint64) uint64 { return (i - 1) & f.mask }

// isEmptySlot reports whether slot i holds no fingerprint.
func (f *QuotientFilter) isEmptySlot(i uint64) bool {
	return !f.occupied[i] && !f.cont[i] && !f.shifted[i]
}

// findRunStart locates the first slot of the run belonging to bucket q,
// which must be occupied.
func (f *QuotientFilter) findRunStart(q uint64) uint64 {
	// Walk left to the cluster start (first unshifted slot).
	b := q
	for f.shifted[b] {
		b = f.prev(b)
	}
	// Walk right: count occupied buckets vs run starts to find q's run.
	s := b
	for b != q {
		// Advance s to the next run start.
		for {
			s = f.next(s)
			if !f.cont[s] {
				break
			}
		}
		// Advance b to the next occupied bucket.
		for {
			b = f.next(b)
			if f.occupied[b] {
				break
			}
		}
	}
	return s
}

// Contains reports whether the key may be in the set.
func (f *QuotientFilter) Contains(key []byte) bool {
	q, r := f.fingerprint(key)
	if !f.occupied[q] {
		return false
	}
	s := f.findRunStart(q)
	for {
		if f.remainder[s] == r {
			return true
		}
		s = f.next(s)
		if !f.cont[s] {
			return false
		}
	}
}

// ContainsUint64 tests a uint64 key in big-endian encoding.
func (f *QuotientFilter) ContainsUint64(key uint64) bool {
	return f.Contains(beUint64(key))
}

// Add inserts a key. Runs are kept sorted by remainder so probes can
// stop early. It returns an error when the filter is full; adding a
// fingerprint already present is idempotent.
func (f *QuotientFilter) Add(key []byte) error {
	if f.count >= uint64(len(f.remainder))-1 {
		return fmt.Errorf("%w: quotient filter full (%d slots)", ErrInvalidParams, len(f.remainder))
	}
	q, r := f.fingerprint(key)
	if f.isEmptySlot(q) {
		f.occupied[q] = true
		f.remainder[q] = r
		f.count++
		return nil
	}
	wasOccupied := f.occupied[q]
	f.occupied[q] = true
	start := f.findRunStart(q)
	pos := start
	if wasOccupied {
		// Find the sorted position within the existing run.
		for {
			if f.remainder[pos] == r {
				return nil
			}
			if f.remainder[pos] > r {
				break
			}
			np := f.next(pos)
			if !f.cont[np] {
				pos = np // end of run: append
				break
			}
			pos = np
		}
	}
	// Insert at pos, displacing the rest of the cluster one slot right.
	curR := r
	curCont := wasOccupied && pos != start
	// Inserting before an existing run head demotes that head to a
	// continuation slot when it is displaced.
	demoteNext := wasOccupied && pos == start
	first := true
	i := pos
	for {
		if f.isEmptySlot(i) {
			f.remainder[i] = curR
			f.cont[i] = curCont
			f.shifted[i] = !first || i != q
			break
		}
		oldR, oldCont := f.remainder[i], f.cont[i]
		f.remainder[i] = curR
		f.cont[i] = curCont
		f.shifted[i] = !first || i != q
		curR, curCont = oldR, oldCont
		if demoteNext {
			curCont = true
			demoteNext = false
		}
		first = false
		i = f.next(i)
	}
	f.count++
	return nil
}

// AddUint64 inserts a uint64 key in big-endian encoding.
func (f *QuotientFilter) AddUint64(key uint64) error {
	return f.Add(beUint64(key))
}

// Count returns the number of stored fingerprints.
func (f *QuotientFilter) Count() uint64 { return f.count }

// SizeBytes returns the footprint of a bit-packed encoding: (r+3) bits
// per slot (this prototype stores slots unpacked for clarity; embedders
// budget with the packed size, as the quotient filter paper does).
func (f *QuotientFilter) SizeBytes() uint64 {
	bits := uint64(len(f.remainder)) * uint64(f.rbits+3)
	return (bits + 7) / 8
}

// FillRatio returns the fraction of slots in use.
func (f *QuotientFilter) FillRatio() float64 {
	used := 0
	for i := range f.remainder {
		if !f.isEmptySlot(uint64(i)) {
			used++
		}
	}
	return float64(used) / float64(len(f.remainder))
}
