package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuotientBasic(t *testing.T) {
	f, err := NewQuotient(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.ContainsUint64(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("count = %d", f.Count())
	}
	if f.FillRatio() <= 0 || f.FillRatio() > 0.8 {
		t.Errorf("fill ratio %g outside expected band", f.FillRatio())
	}
}

func TestQuotientFPP(t *testing.T) {
	const n = 5000
	f, err := NewQuotient(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	falsePos := 0
	const probes = 50000
	for i := uint64(0); i < probes; i++ {
		if f.ContainsUint64(n + 1000 + i) {
			falsePos++
		}
	}
	measured := float64(falsePos) / probes
	if measured > 0.02 {
		t.Errorf("measured fpp %g exceeds 2x design 0.01", measured)
	}
}

func TestQuotientIdempotentAdd(t *testing.T) {
	f, err := NewQuotient(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.AddUint64(7); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != 1 {
		t.Errorf("re-adding the same fingerprint should be idempotent, count = %d", f.Count())
	}
}

func TestQuotientFull(t *testing.T) {
	f, err := NewQuotient(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var addErr error
	for i := uint64(0); i < 100 && addErr == nil; i++ {
		addErr = f.AddUint64(i * 7919)
	}
	if addErr == nil {
		t.Error("filter never reported full")
	}
}

func TestQuotientValidation(t *testing.T) {
	if _, err := NewQuotient(0, 0.01); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := NewQuotient(10, 0); err == nil {
		t.Error("fpp 0 accepted")
	}
	if _, err := NewQuotient(1<<40, 1e-30); err == nil {
		t.Error("oversized fingerprint accepted")
	}
	f, _ := NewQuotient(1000, 0.01)
	if f.SizeBytes() == 0 {
		t.Error("size must be positive")
	}
}

// Property: quotient filter never false-negatives under random insert
// orders that stress cluster shifting.
func TestQuickQuotientNoFalseNegatives(t *testing.T) {
	prop := func(seed int64) bool {
		f, err := NewQuotient(600, 0.02)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = rng.Uint64()
			if err := f.AddUint64(keys[i]); err != nil {
				return false
			}
		}
		for _, k := range keys {
			if !f.ContainsUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: dense sequential keys (worst case for clustering) still
// never false-negative.
func TestQuotientDenseClusters(t *testing.T) {
	f, err := NewQuotient(3000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
		// Verify everything so far after every 500 inserts.
		if i%500 == 0 {
			for j := uint64(0); j <= i; j++ {
				if !f.ContainsUint64(j) {
					t.Fatalf("after %d inserts, key %d lost", i, j)
				}
			}
		}
	}
}

func TestDeletableBasic(t *testing.T) {
	d, err := NewDeletable(1000, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		d.AddUint64(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !d.ContainsUint64(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestDeletableRemove(t *testing.T) {
	// Lightly loaded filter: most regions collision-free, so most
	// deletes succeed and removed keys stop matching.
	d, err := NewDeletable(2000, 1e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		d.AddUint64(i)
	}
	removed := 0
	for i := uint64(0); i < 100; i++ {
		ok, err := d.RemoveUint64(i)
		if err != nil {
			t.Fatal(err)
		}
		if ok && !d.ContainsUint64(i) {
			removed++
		}
	}
	if removed < 80 {
		t.Errorf("only %d of 100 deletes took effect on a light filter", removed)
	}
	// Surviving keys are never harmed.
	for i := uint64(100); i < 200; i++ {
		if !d.ContainsUint64(i) {
			t.Fatalf("delete introduced false negative for %d", i)
		}
	}
	if _, err := d.RemoveUint64(99999); err == nil {
		t.Error("removing absent key accepted")
	}
}

func TestDeletableCollisionsBlockDeletes(t *testing.T) {
	// One region: every collision anywhere blocks all deletes.
	d, err := NewDeletable(100, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		d.AddUint64(i)
	}
	if d.CollidedRegions() != 1 {
		t.Fatalf("expected the single region to collide, got %d", d.CollidedRegions())
	}
	ok, err := d.RemoveUint64(5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delete in a fully collided filter should be a no-op")
	}
	if !d.ContainsUint64(5) {
		t.Error("blocked delete must leave the key visible")
	}
}

func TestDeletableSizeIncludesCollisionMap(t *testing.T) {
	d, err := NewDeletable(1000, 0.01, 64)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d.SizeBytes() <= plain.SizeBytes() {
		t.Error("deletable filter must carry the collision bitmap overhead")
	}
}

// Property: deletable filter never false-negatives for keys not removed,
// regardless of the interleaving of adds and removes.
func TestQuickDeletableNoCollateralDamage(t *testing.T) {
	d, err := NewDeletable(4096, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	prop := func(key uint64, del bool) bool {
		key %= 2000
		if del && live[key] {
			if _, err := d.RemoveUint64(key); err != nil {
				return false
			}
			delete(live, key)
		} else {
			d.AddUint64(key)
			live[key] = true
		}
		for k := range live {
			if !d.ContainsUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
