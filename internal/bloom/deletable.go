package bloom

import "fmt"

// DeletableFilter is the deletable Bloom filter of Rothenberg et al.
// (IEEE Comm. Letters 2010, cited as [39] by the paper's Section 7): the
// bit array is divided into regions, and a small collision bitmap marks
// regions where two insertions set the same bit. A bit may be safely
// reset during deletion only if its region is collision-free, so deletes
// never introduce false negatives; deletes of keys whose bits all landed
// in collided regions fail gracefully (the key stays, keeping the filter
// correct at a slightly elevated false positive probability — exactly
// the drift Section 7 budgets for).
type DeletableFilter struct {
	bits      []uint64
	nbits     uint64
	hashes    int
	regions   uint64
	regionLen uint64
	collided  []bool
	count     uint64
}

// NewDeletable creates a deletable filter for n keys at false positive
// probability fpp with the given number of collision regions (0 selects
// one region per 64 bits, the granularity the original paper evaluates).
func NewDeletable(n uint64, fpp float64, regions uint64) (*DeletableFilter, error) {
	p, err := ParamsForKeys(n, fpp, 0)
	if err != nil {
		return nil, err
	}
	if regions == 0 {
		regions = (p.Bits + 63) / 64
	}
	if regions > p.Bits {
		regions = p.Bits
	}
	regionLen := (p.Bits + regions - 1) / regions
	return &DeletableFilter{
		bits:      make([]uint64, (p.Bits+63)/64),
		nbits:     p.Bits,
		hashes:    p.Hashes,
		regions:   regions,
		regionLen: regionLen,
		collided:  make([]bool, regions),
	}, nil
}

func (d *DeletableFilter) getBit(idx uint64) bool {
	return d.bits[idx/64]&(1<<(idx%64)) != 0
}

func (d *DeletableFilter) setBit(idx uint64) {
	d.bits[idx/64] |= 1 << (idx % 64)
}

func (d *DeletableFilter) clearBit(idx uint64) {
	d.bits[idx/64] &^= 1 << (idx % 64)
}

func (d *DeletableFilter) region(idx uint64) uint64 {
	return idx / d.regionLen
}

// Add inserts a key, recording collisions per region.
func (d *DeletableFilter) Add(key []byte) {
	h1, h2 := baseHashes(key)
	for i := 0; i < d.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % d.nbits
		if d.getBit(idx) {
			d.collided[d.region(idx)] = true
		} else {
			d.setBit(idx)
		}
	}
	d.count++
}

// AddUint64 inserts a uint64 key in big-endian encoding.
func (d *DeletableFilter) AddUint64(key uint64) { d.Add(beUint64(key)) }

// Contains reports whether the key may be in the set.
func (d *DeletableFilter) Contains(key []byte) bool {
	h1, h2 := baseHashes(key)
	for i := 0; i < d.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % d.nbits
		if !d.getBit(idx) {
			return false
		}
	}
	return true
}

// ContainsUint64 tests a uint64 key in big-endian encoding.
func (d *DeletableFilter) ContainsUint64(key uint64) bool {
	return d.Contains(beUint64(key))
}

// Remove deletes a key by clearing its bits in collision-free regions.
// It reports whether at least one bit could be cleared — in that case
// the key no longer matches. When every bit sits in a collided region
// the delete is a no-op (the key remains visible) and Remove returns
// false; no false negatives are ever introduced for other keys.
func (d *DeletableFilter) Remove(key []byte) (bool, error) {
	if !d.Contains(key) {
		return false, fmt.Errorf("%w: removing absent key", ErrInvalidParams)
	}
	h1, h2 := baseHashes(key)
	cleared := false
	for i := 0; i < d.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % d.nbits
		if !d.collided[d.region(idx)] {
			d.clearBit(idx)
			cleared = true
		}
	}
	if cleared && d.count > 0 {
		d.count--
	}
	return cleared, nil
}

// RemoveUint64 deletes a uint64 key in big-endian encoding.
func (d *DeletableFilter) RemoveUint64(key uint64) (bool, error) {
	return d.Remove(beUint64(key))
}

// Count returns the net number of keys (adds minus effective removes).
func (d *DeletableFilter) Count() uint64 { return d.count }

// SizeBytes returns the footprint: bit array plus one collision bit per
// region.
func (d *DeletableFilter) SizeBytes() uint64 {
	return uint64(len(d.bits))*8 + (d.regions+7)/8
}

// CollidedRegions returns how many regions are marked collided — the
// deletability diagnostic of the original paper (fewer collided regions
// means more keys can be deleted).
func (d *DeletableFilter) CollidedRegions() uint64 {
	var n uint64
	for _, c := range d.collided {
		if c {
			n++
		}
	}
	return n
}
