// Package bloom implements the Bloom filter variants used by the BF-Tree
// reproduction: the classic Bloom filter of Bloom (1970) with double
// hashing, the parameter mathematics of Equation 1 of the paper
// (n = -m·ln²2 / ln p), counting Bloom filters that support deletion, and
// scalable Bloom filters that grow while bounding the compound false
// positive probability.
//
// All filters in this package share two guarantees that the BF-Tree relies
// on: membership tests never produce false negatives, and the false
// positive probability of a filter sized with ParamsForKeys holds as long
// as no more than the design number of keys is inserted.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Ln2Squared is ln²(2), the constant of Equation 1 of the paper.
const Ln2Squared = 0.4804530139182014

// ErrInvalidParams reports Bloom filter parameters that are out of domain,
// e.g. a false positive probability outside (0, 1).
var ErrInvalidParams = errors.New("bloom: invalid parameters")

// Params describes the geometry of a Bloom filter: its size in bits, the
// number of hash functions, and the design false positive probability at
// the design key count.
type Params struct {
	Bits   uint64  // m: filter size in bits
	Hashes int     // k: number of hash functions
	Keys   uint64  // n: design number of distinct keys
	FPP    float64 // p: design false positive probability at n keys
}

// KeysForBits solves Equation 1 of the paper for n: the number of distinct
// keys that m bits can index at false positive probability fpp, assuming
// the optimal number of hash functions.
//
//	n = -m · ln²(2) / ln(fpp)
func KeysForBits(bits uint64, fpp float64) uint64 {
	if bits == 0 || fpp <= 0 || fpp >= 1 {
		return 0
	}
	n := -float64(bits) * Ln2Squared / math.Log(fpp)
	if n < 1 {
		return 0
	}
	return uint64(n)
}

// BitsForKeys solves Equation 1 for m: the number of bits needed to index
// n distinct keys at false positive probability fpp.
func BitsForKeys(keys uint64, fpp float64) uint64 {
	if keys == 0 || fpp <= 0 || fpp >= 1 {
		return 0
	}
	m := -float64(keys) * math.Log(fpp) / Ln2Squared
	return uint64(math.Ceil(m))
}

// OptimalHashes returns the number of hash functions that minimizes the
// false positive probability for a filter of m bits holding n keys:
// k = (m/n)·ln 2, at least 1.
func OptimalHashes(bits, keys uint64) int {
	if keys == 0 {
		return 1
	}
	k := int(math.Round(float64(bits) / float64(keys) * math.Ln2))
	if k < 1 {
		return 1
	}
	return k
}

// ExpectedFPP returns the expected false positive probability of a filter
// of m bits with k hash functions after n insertions:
// (1 - e^{-kn/m})^k.
func ExpectedFPP(bits uint64, hashes int, keys uint64) float64 {
	if bits == 0 {
		return 1
	}
	if keys == 0 {
		return 0
	}
	exp := -float64(hashes) * float64(keys) / float64(bits)
	return math.Pow(1-math.Exp(exp), float64(hashes))
}

// DriftedFPP implements Equation 14 of the paper: the effective false
// positive probability of a filter designed for fpp after inserting
// insertRatio·n additional keys beyond its design load:
//
//	new_fpp = fpp^(1 / (1 + insertRatio))
func DriftedFPP(fpp, insertRatio float64) float64 {
	if fpp <= 0 || fpp >= 1 || insertRatio <= 0 {
		return fpp
	}
	return math.Pow(fpp, 1/(1+insertRatio))
}

// ParamsForKeys sizes a filter for n keys at the requested false positive
// probability. If hashes <= 0 the optimal count is used; the BF-Tree paper
// fixes k = 3 in its experiments, which callers request explicitly.
func ParamsForKeys(keys uint64, fpp float64, hashes int) (Params, error) {
	if keys == 0 || fpp <= 0 || fpp >= 1 {
		return Params{}, fmt.Errorf("%w: keys=%d fpp=%g", ErrInvalidParams, keys, fpp)
	}
	bits := BitsForKeys(keys, fpp)
	if hashes <= 0 {
		hashes = OptimalHashes(bits, keys)
	}
	return Params{Bits: bits, Hashes: hashes, Keys: keys, FPP: fpp}, nil
}

// ParamsForBits sizes a filter constrained to a bit budget (e.g. the bits
// available in a 4 KB BF-leaf) at the requested false positive
// probability, deriving the key capacity from Equation 1.
func ParamsForBits(bits uint64, fpp float64, hashes int) (Params, error) {
	if bits == 0 || fpp <= 0 || fpp >= 1 {
		return Params{}, fmt.Errorf("%w: bits=%d fpp=%g", ErrInvalidParams, bits, fpp)
	}
	keys := KeysForBits(bits, fpp)
	if keys == 0 {
		keys = 1
	}
	if hashes <= 0 {
		hashes = OptimalHashes(bits, keys)
	}
	return Params{Bits: bits, Hashes: hashes, Keys: keys, FPP: fpp}, nil
}

// Filter is a classic Bloom filter. It uses the Kirsch–Mitzenmacher double
// hashing scheme: two 64-bit base hashes combined as h1 + i·h2 simulate k
// independent hash functions with no loss in asymptotic false positive
// rate.
//
// The zero value is not usable; construct with New or NewWithParams.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	count  uint64 // keys inserted so far
}

// New creates a filter sized for the given key count and false positive
// probability with the optimal number of hash functions.
func New(keys uint64, fpp float64) (*Filter, error) {
	p, err := ParamsForKeys(keys, fpp, 0)
	if err != nil {
		return nil, err
	}
	return NewWithParams(p), nil
}

// NewWithParams creates a filter with explicit geometry.
func NewWithParams(p Params) *Filter {
	nb := p.Bits
	if nb == 0 {
		nb = 64
	}
	words := (nb + 63) / 64
	h := p.Hashes
	if h < 1 {
		h = 1
	}
	return &Filter{bits: make([]uint64, words), nbits: nb, hashes: h}
}

// baseHashes produces the two independent 64-bit hashes used for double
// hashing. Key bytes are hashed with two differently-seeded mixers.
func baseHashes(key []byte) (uint64, uint64) {
	h1 := fnv1a(key, 0xcbf29ce484222325)
	h2 := fnv1a(key, 0x84222325cbf29ce4)
	// Mix to decorrelate; h2 must be odd so that the stride cycles the
	// whole table even for power-of-two sizes.
	h2 |= 1
	return h1, h2
}

// fnv1a is FNV-1a with a custom seed, followed by a 64-bit finalizer
// (splitmix64) to break FNV's weak avalanche on short keys.
func fnv1a(key []byte, seed uint64) uint64 {
	const prime = 1099511628211
	h := seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := baseHashes(key)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// AddUint64 inserts a uint64 key using its big-endian encoding. This is
// the key form used throughout the BF-Tree, which indexes integer and
// date-encoded attributes.
func (f *Filter) AddUint64(key uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	f.Add(buf[:])
}

// Contains reports whether the key may be in the set. A false return is
// definitive; a true return is correct with probability 1-fpp.
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := baseHashes(key)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsUint64 tests a uint64 key encoded as by AddUint64.
func (f *Filter) ContainsUint64(key uint64) bool {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	return f.Contains(buf[:])
}

// Count returns the number of Add calls so far.
func (f *Filter) Count() uint64 { return f.count }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.hashes }

// SizeBytes returns the memory footprint of the bit array in bytes.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.bits)) * 8 }

// FillRatio returns the fraction of bits set to 1, a diagnostic for load.
func (f *Filter) FillRatio() float64 {
	ones := uint64(0)
	for _, w := range f.bits {
		ones += uint64(bits.OnesCount64(w))
	}
	return float64(ones) / float64(f.nbits)
}

// EstimatedFPP returns the expected false positive probability at the
// current load.
func (f *Filter) EstimatedFPP() float64 {
	return ExpectedFPP(f.nbits, f.hashes, f.count)
}

// Reset clears all bits, returning the filter to its empty state.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// Union merges other into f. Both filters must have identical geometry;
// the merged filter answers Contains for the union of both key sets.
func (f *Filter) Union(other *Filter) error {
	if f.nbits != other.nbits || f.hashes != other.hashes {
		return fmt.Errorf("%w: mismatched geometry %d/%d bits, %d/%d hashes",
			ErrInvalidParams, f.nbits, other.nbits, f.hashes, other.hashes)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}

// Words exposes the underlying bit array (aliased, not copied). It
// exists for embedders like the BF-Tree leaf, which packs many filters
// into one page and cannot afford a per-filter header.
func (f *Filter) Words() []uint64 { return f.bits }

// FromWords reconstructs a filter around an existing bit array, the
// inverse of Words. The slice is aliased.
func FromWords(words []uint64, nbits uint64, hashes int, count uint64) *Filter {
	return &Filter{bits: words, nbits: nbits, hashes: hashes, count: count}
}

// MarshalBinary serializes the filter: header (nbits, hashes, count)
// followed by the bit array, little-endian. It implements
// encoding.BinaryMarshaler.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 24+len(f.bits)*8)
	binary.LittleEndian.PutUint64(buf[0:8], f.nbits)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(f.hashes))
	binary.LittleEndian.PutUint64(buf[16:24], f.count)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(buf[24+i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary. It
// implements encoding.BinaryUnmarshaler.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("%w: short buffer (%d bytes)", ErrInvalidParams, len(data))
	}
	nbits := binary.LittleEndian.Uint64(data[0:8])
	hashes := int(binary.LittleEndian.Uint64(data[8:16]))
	count := binary.LittleEndian.Uint64(data[16:24])
	words := (nbits + 63) / 64
	if uint64(len(data)-24) < words*8 {
		return fmt.Errorf("%w: truncated bit array", ErrInvalidParams)
	}
	f.nbits = nbits
	f.hashes = hashes
	f.count = count
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[24+i*8:])
	}
	return nil
}
