// TPCH: the data-warehousing scenario of Section 6.4. The lineitem-like
// table is ordered on shipdate (implicit clustering, Figure 1a); a
// BF-Tree indexes the date at a few pages, and probes at different hit
// rates show the trade-off of Figure 11: misses are nearly free, hits
// pay for the ~2400-tuple date partitions either way.
//
// Run with: go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"bftree"
	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

func main() {
	dataDev := device.New(device.SSD, 4096)
	dataStore := pagestore.New(dataDev)
	tp, err := workload.GenerateTPCH(dataStore, 480000, 200, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem: %d tuples over %d ship dates (≈%.0f per date), %d pages\n",
		tp.File.NumTuples(), len(tp.DateCards),
		float64(tp.File.NumTuples())/float64(len(tp.DateCards)), tp.File.NumPages())

	idxDev := device.New(device.SSD, 4096)
	idx, err := bftree.BulkLoad(pagestore.New(idxDev), tp.File, "shipdate", bftree.Options{FPP: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	shipField := workload.TPCHSchema.FieldIndex("shipdate")
	entries, err := bptree.DedupEntries(tp.File, shipField)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := bptree.BulkLoad(pagestore.New(device.New(device.SSD, 4096)), entries, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: BF-Tree %d pages (height %d) vs B+-Tree %d pages\n",
		idx.NumNodes(), idx.Height(), bp.NumNodes())

	// A reporting query: all lineitems shipped on one date.
	probeDate := tp.MinDate + (tp.MaxDate-tp.MinDate)/2
	res, err := idx.Search(probeDate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipdate=%d → %d lineitems from %d data pages (%d false)\n",
		probeDate, len(res.Tuples), res.Stats.DataPagesRead, res.Stats.FalseReads)

	// Miss probes (dates beyond the horizon) are answered from the index
	// alone — the BF-Tree's strength at low hit rates (Figure 11).
	idxDev.ResetStats()
	dataDev.ResetStats()
	for i := uint64(1); i <= 100; i++ {
		if _, err := idx.Search(tp.MaxDate + 10 + i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("100 miss probes: %d data page reads, index time %v\n",
		dataDev.Stats().Reads(), idxDev.Stats().Elapsed)

	// Quarter report: a 90-day range scan.
	q, err := idx.RangeScan(probeDate, probeDate+89)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("90-day scan → %d lineitems from %d data pages\n",
		len(q.Tuples), q.Stats.DataPagesRead)

	// Index intersection (Section 8): lineitems shipped on probeDate
	// whose receipt date is probeDate+10 — intersect two BF-Trees.
	rIdx, err := bftree.BulkLoad(pagestore.New(device.New(device.SSD, 4096)), tp.File, "receiptdate",
		bftree.Options{FPP: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	pages, stats, err := idx.Intersect(rIdx, probeDate, probeDate+10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intersection ship=%d ∧ receipt=%d → %d candidate pages (from %d + probes)\n",
		probeDate, probeDate+10, len(pages), stats.BFProbes)
}
