// Coldstore: the cold-storage scenario of Section 1.1 — immutable
// time-ordered archives on cheap dense media (Facebook-style cold flash
// or shingled disks), where the index must be small enough to keep in a
// tight memory budget. This example sweeps the fpp knob to show the
// capacity/accuracy dial of Section 4: for a fixed archive, how small
// can the index get before probes degrade?
//
// Run with: go run ./examples/coldstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bftree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func main() {
	// A 128 MB archive of 512-byte records keyed by record time.
	schema := bftree.Schema{
		TupleSize: 512,
		Fields: []bftree.Field{
			{Name: "archived_at", Offset: 0},
			{Name: "object_id", Offset: 8},
		},
	}
	dataDev := device.New(device.HDD, 4096)
	builder, err := bftree.NewRelationBuilder(pagestore.New(dataDev), schema)
	if err != nil {
		log.Fatal(err)
	}
	tuple := make([]byte, schema.TupleSize)
	const n = 262144
	ts := uint64(1_700_000_000)
	for i := uint64(0); i < n; i++ {
		if i%3 == 0 {
			ts += 1 + i%5 // bursts: several objects per second, then gaps
		}
		binary.BigEndian.PutUint64(tuple[0:8], ts)
		binary.BigEndian.PutUint64(tuple[8:16], i)
		if err := builder.Append(tuple); err != nil {
			log.Fatal(err)
		}
	}
	file, err := builder.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d records, %.0f MB on cold HDD\n",
		file.NumTuples(), float64(file.SizeBytes())/(1<<20))
	fmt.Printf("%-10s %-12s %-12s %-16s %-14s\n",
		"fpp", "index-KB", "%of-data", "false-reads/probe", "avg-probe-time")

	lastTS := ts
	for _, fpp := range []float64{0.2, 0.01, 1e-4, 1e-8} {
		idxDev := device.New(device.Memory, 4096) // index pinned in memory
		idx, err := bftree.BulkLoad(pagestore.New(idxDev), file, "archived_at", bftree.Options{FPP: fpp})
		if err != nil {
			log.Fatal(err)
		}
		dataDev.ResetStats()
		idxDev.ResetStats()
		const probes = 400
		falseReads := 0
		for i := 0; i < probes; i++ {
			key := 1_700_000_000 + uint64(i)*(lastTS-1_700_000_000)/probes
			res, err := idx.Search(key)
			if err != nil {
				log.Fatal(err)
			}
			falseReads += res.Stats.FalseReads
		}
		avg := (dataDev.Stats().Elapsed + idxDev.Stats().Elapsed) / probes
		fmt.Printf("%-10.0e %-12.0f %-12.4f %-16.2f %-14v\n",
			fpp, float64(idx.SizeBytes())/1024,
			100*float64(idx.SizeBytes())/float64(file.SizeBytes()),
			float64(falseReads)/probes, avg)
	}
	fmt.Println("\nreading the dial: each 10^-2 of fpp costs ~2x index size and buys ~100x fewer false reads;")
	fmt.Println("for an archive probed rarely, fpp=0.01 keeps the whole index smaller than one data extent.")
}
