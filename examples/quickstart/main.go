// Quickstart: build an ordered relation on a simulated SSD, then index
// it with EVERY registered backend — the BF-Tree and the paper's three
// competitors — through the unified index API, swapping backends by
// registry name only. One probe loop serves all of them; the output is
// the paper's headline comparison: the BF-Tree answers within a small
// factor of the exact indexes at a fraction of their footprint.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bftree"
	"bftree/index"
)

func main() {
	// A relation of 100 000 ordered events: 64-byte tuples keyed by a
	// sparse, increasing event id (think: time-ordered log records).
	schema := bftree.Schema{
		TupleSize: 64,
		Fields: []bftree.Field{
			{Name: "event_id", Offset: 0},
			{Name: "payload", Offset: 8},
		},
	}

	dataDev := bftree.NewDevice(bftree.SSD, 4096)
	dataStore := bftree.NewStore(dataDev, 0)
	builder, err := bftree.NewRelationBuilder(dataStore, schema)
	if err != nil {
		log.Fatal(err)
	}
	tuple := make([]byte, schema.TupleSize)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		binary.BigEndian.PutUint64(tuple[0:8], i*7) // sparse ordered ids
		binary.BigEndian.PutUint64(tuple[8:16], i)
		if err := builder.Append(tuple); err != nil {
			log.Fatal(err)
		}
	}
	file, err := builder.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relation: %d tuples on %d pages (%.1f MB)\n\n",
		file.NumTuples(), file.NumPages(), float64(file.SizeBytes())/(1<<20))

	probes := []uint64{0, 7 * 1234, 7 * 99999}
	miss := uint64(7*1234 + 1)

	// One loop, four backends: the registry is the only thing that
	// changes between an approximate BF-Tree and an exact baseline.
	for _, name := range index.Backends() {
		// Each backend gets its own simulated SSD so footprints and I/O
		// are directly comparable.
		idxDev := bftree.NewDevice(bftree.SSD, 4096)
		idxStore := bftree.NewStore(idxDev, 0)
		ix, err := index.NewByField(name, idxStore, file, "event_id", index.Options{})
		if err != nil {
			log.Fatal(err)
		}

		st := ix.Stats()
		fmt.Printf("%-7s %7.1f KB (%.4f%% of the data), height %d\n",
			name, float64(st.SizeBytes)/1024,
			100*float64(st.SizeBytes)/float64(file.SizeBytes()), st.Height)

		// Point probes: identical answers from every backend; the cost
		// accounting shows where the approximation pays its rent.
		for _, key := range probes {
			res, err := ix.SearchFirst(key)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  probe %-8d → %d tuple(s); %d index reads, %d data pages (%d false)\n",
				key, len(res.Tuples), res.Stats.IndexReads,
				res.Stats.DataPagesRead, res.Stats.FalseReads)
		}
		if res, err := ix.Search(miss); err != nil {
			log.Fatal(err)
		} else {
			fmt.Printf("  probe miss     → %d tuple(s); %d data pages read\n",
				len(res.Tuples), res.Stats.DataPagesRead)
		}

		// Range scan: every backend answers it (the hash via its bucket
		// walk), in key order.
		scan, err := ix.RangeScan(700, 1400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  range [700,1400] → %d tuples from %d data pages\n",
			len(scan.Tuples), scan.Stats.DataPagesRead)

		// LIMIT-k, the streaming way: a cursor over a much larger range
		// stops after 5 tuples and pays only for the pages behind them —
		// compare its data-page count to the materialized scan above.
		it, err := index.Scan(ix, 700, 70000)
		if err != nil {
			log.Fatal(err)
		}
		got := 0
		for got < 5 && it.Next() {
			got++
		}
		limitStats := it.Stats()
		if err := it.Close(); err != nil { // releases the cursor's resources
			log.Fatal(err)
		}
		fmt.Printf("  limit 5 of [700,70000] → %d tuples from %d data pages (streamed)\n",
			got, limitStats.DataPagesRead)

		// Batched probes: one MultiSearch call answers many keys while
		// sharing index descents — fewer index reads than key-at-a-time.
		batch, err := index.MultiSearch(ix, []uint64{0, 7 * 1234, 7 * 5000, 7 * 99999})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch of 4 keys → %d tuples; %d index reads for the whole batch\n",
			len(batch.Tuples), batch.Stats.IndexReads)

		// Capability discovery: ask the index what else it can do.
		caps := ""
		if _, ok := ix.(index.Scanner); ok {
			caps += " scan"
		}
		if _, ok := ix.(index.MultiSearcher); ok {
			caps += " multisearch"
		}
		if _, ok := ix.(index.Inserter); ok {
			caps += " insert"
		}
		if _, ok := ix.(index.Deleter); ok {
			caps += " delete"
		}
		if _, ok := ix.(index.Flusher); ok {
			caps += " flush"
		}
		if _, ok := ix.(index.Persister); ok {
			caps += " persist"
		}
		if _, ok := ix.(index.Maintainer); ok {
			caps += " maintain"
		}
		fmt.Printf("  capabilities:%s\n", caps)
		fmt.Printf("  device time charged: %v\n\n", idxDev.Stats().Elapsed)

		if err := ix.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
