// Quickstart: build an ordered relation on a simulated SSD, index it
// with a BF-Tree, and compare the index footprint and probe cost against
// what a B+-Tree would need.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bftree"
)

func main() {
	// A relation of 100 000 ordered events: 64-byte tuples keyed by a
	// sparse, increasing event id (think: time-ordered log records).
	schema := bftree.Schema{
		TupleSize: 64,
		Fields: []bftree.Field{
			{Name: "event_id", Offset: 0},
			{Name: "payload", Offset: 8},
		},
	}

	dataDev := bftree.NewDevice(bftree.SSD, 4096)
	dataStore := bftree.NewStore(dataDev, 0)
	builder, err := bftree.NewRelationBuilder(dataStore, schema)
	if err != nil {
		log.Fatal(err)
	}
	tuple := make([]byte, schema.TupleSize)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		binary.BigEndian.PutUint64(tuple[0:8], i*7) // sparse ordered ids
		binary.BigEndian.PutUint64(tuple[8:16], i)
		if err := builder.Append(tuple); err != nil {
			log.Fatal(err)
		}
	}
	file, err := builder.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relation: %d tuples on %d pages (%.1f MB)\n",
		file.NumTuples(), file.NumPages(), float64(file.SizeBytes())/(1<<20))

	// Index on a separate simulated SSD with a 0.1% false positive
	// probability.
	idxDev := bftree.NewDevice(bftree.SSD, 4096)
	idxStore := bftree.NewStore(idxDev, 0)
	idx, err := bftree.BulkLoad(idxStore, file, "event_id", bftree.Options{FPP: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BF-Tree: height %d, %d leaves, %.1f KB (%.4f%% of the data)\n",
		idx.Height(), idx.NumLeaves(), float64(idx.SizeBytes())/1024,
		100*float64(idx.SizeBytes())/float64(file.SizeBytes()))

	// Probe a few keys; Result carries both tuples and cost accounting.
	for _, key := range []uint64{0, 7 * 1234, 7 * 99999} {
		res, err := idx.SearchFirst(key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("probe %-8d → %d tuple(s); %d index reads, %d data pages (%d false)\n",
			key, len(res.Tuples), res.Stats.IndexReads,
			res.Stats.DataPagesRead, res.Stats.FalseReads)
	}

	// A miss inside the key domain: the filters reject it with no (or
	// almost no) data page reads.
	res, err := idx.Search(7*1234 + 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe miss     → %d tuple(s); %d data pages read\n",
		len(res.Tuples), res.Stats.DataPagesRead)

	// Range scan: one descent, then sequential partitions.
	scan, err := idx.RangeScan(700, 1400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [700,1400] → %d tuples from %d data pages\n",
		len(scan.Tuples), scan.Stats.DataPagesRead)

	fmt.Printf("device time charged: index %v, data %v\n",
		idxDev.Stats().Elapsed, dataDev.Stats().Elapsed)
}
