// Monitoring: the smart-home scenario that motivates the paper
// (Figure 1b, Section 6.5). A stream of timestamped sensor readings with
// highly variable per-timestamp cardinality is stored in timestamp
// order; a BF-Tree indexes the timestamp at a fraction of a B+-Tree's
// size, and dashboard-style point and window queries run against it.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"bftree"
	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

func main() {
	// Readings land on an HDD cold-storage tier; the index fits on SSD.
	dataDev := device.New(device.HDD, 4096)
	dataStore := pagestore.New(dataDev)
	shd, err := workload.GenerateSHD(dataStore, 300000, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smart-home dataset: %d readings over %d timestamps (cardinality mean %.0f, max %d)\n",
		shd.File.NumTuples(), len(shd.Cards), shd.MeanCard, shd.MaxCard)

	idxDev := device.New(device.SSD, 4096)
	idxStore := pagestore.New(idxDev)
	tsField := workload.SHDSchema.FieldIndex("timestamp")

	idx, err := bftree.BulkLoad(idxStore, shd.File, "timestamp", bftree.Options{FPP: 1e-3})
	if err != nil {
		log.Fatal(err)
	}

	// The B+-Tree alternative, for the size comparison the paper makes.
	entries, err := bptree.DedupEntries(shd.File, tsField)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := bptree.BulkLoad(pagestore.New(device.New(device.SSD, 4096)), entries, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index footprint: BF-Tree %d pages vs B+-Tree %d pages (%.1fx smaller)\n",
		idx.NumNodes(), bp.NumNodes(), float64(bp.NumNodes())/float64(idx.NumNodes()))

	// Point query: "what happened at this exact second?"
	var probe uint64
	for ts := range shd.Cards {
		probe = ts
		break
	}
	res, err := idx.Search(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point query ts=%d → %d readings (%d data pages, %d false)\n",
		probe, len(res.Tuples), res.Stats.DataPagesRead, res.Stats.FalseReads)

	// Window query: "give me the five-minute window around it" — the
	// range scan walks whole partitions sequentially, which is what the
	// HDD tier is good at.
	lo, hi := probe-150, probe+150
	win, err := idx.RangeScan(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window [%d,%d] → %d readings from %d sequential data pages\n",
		lo, hi, len(win.Tuples), win.Stats.DataPagesRead)

	// Aggregate over the window: per-client max aggregate energy.
	maxEnergy := make(map[uint64]uint64)
	for _, tup := range win.Tuples {
		client := workload.SHDSchema.Get(tup, 1)
		energy := workload.SHDSchema.Get(tup, 2)
		if energy > maxEnergy[client] {
			maxEnergy[client] = energy
		}
	}
	fmt.Printf("window covers %d distinct clients\n", len(maxEnergy))
	fmt.Printf("device time: index(SSD) %v, data(HDD) %v\n",
		idxDev.Stats().Elapsed, dataDev.Stats().Elapsed)
}
