// Command bfserve mounts a registered index backend behind the HTTP
// serving layer (internal/server): it generates the synthetic relation,
// bulk-loads the chosen index over its primary key, and serves the full
// capability surface — point lookups, range scans, LIMIT-streamed
// scans, batched probes, and (where the backend supports them) inserts,
// deletes and flushes — until interrupted.
//
// Usage:
//
//	bfserve                                  # bftree on :8080, 100k tuples
//	bfserve -index bfforest -shards 8        # sharded forest
//	bfserve -index bptree -tuples 500000     # exact baseline, bigger relation
//	bfserve -addr 127.0.0.1:9000 -fpp 0.01   # custom bind and design point
//	bfserve -backpressure 0.5 -latency 200us # early 429 ramp, real device waits
//
// Probe it with curl (see the README quickstart):
//
//	curl -s localhost:8080/stats | jq .caps
//	curl -s -XPOST localhost:8080/search -d '{"key":42}'
//	curl -s -XPOST localhost:8080/scan -d '{"lo":100,"hi":200,"limit":5}'
//
// Writes against a backend without concurrent-writer support are
// serialized server-side (the registry trait decides); writes against a
// drifting BF-tree are admission-gated — a 429 with Retry-After means
// the tree is approaching its compaction threshold and the maintainer
// needs a moment to catch up.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/pagestore"
	"bftree/internal/server"
	"bftree/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		backend      = flag.String("index", "bftree", "index backend to mount (see registry names)")
		tuples       = flag.Uint64("tuples", 100000, "synthetic relation size in tuples")
		fpp          = flag.Float64("fpp", 1e-3, "BF-tree false positive design point")
		shards       = flag.Int("shards", 0, "bfforest shard count (0: forest default)")
		backpressure = flag.Float64("backpressure", 0, "fraction of the compaction threshold where write 429s begin ramping (0: server default 0.9, >=1: disabled)")
		latency      = flag.Duration("latency", 0, "real blocking time per page access (0: none)")
		seed         = flag.Int64("seed", 42, "relation generator seed")
	)
	flag.Parse()

	b, ok := index.Lookup(*backend)
	if !ok {
		fail(fmt.Errorf("unknown index backend %q (have %v)", *backend, index.Backends()))
	}

	// The served dataset: the synthetic relation's dense primary-key
	// domain, one tuple per key, exactly as the serve-load experiment
	// mounts it.
	dataDev := device.New(device.Memory, 4096)
	syn, err := workload.GenerateSynthetic(pagestore.New(dataDev), *tuples, 11, *seed)
	fail(err)
	file := syn.File

	idxDev := device.New(device.Memory, 4096)
	ix, err := index.New(*backend, pagestore.New(idxDev), file, 0, index.Options{
		BFTree: core.Options{
			FPP: *fpp,
			// A served index must drain its own drift: without the
			// background maintainer, the admission gate's 429s would
			// be terminal under sustained writes.
			Maintenance: core.MaintenancePolicy{
				Mode:             core.MaintenanceAuto,
				ReclaimInterval:  time.Millisecond,
				IncrementalBatch: 8,
			},
		},
		ForestShards: *shards,
	})
	fail(err)
	idxDev.SetRealLatency(*latency)
	dataDev.SetRealLatency(*latency)

	// Writes on a backend without the concurrent-writers trait are
	// serialized against all reads by the server itself.
	srv := server.New(ix, server.Options{
		SerializeWrites:      !b.ConcurrentWriters,
		BackpressureFraction: *backpressure,
	})
	ln, err := net.Listen("tcp", *addr)
	fail(err)

	fmt.Printf("bfserve: %s over %d tuples (%d index pages) on %s; caps %v\n",
		b.Name, file.NumTuples(), ix.Stats().Pages, ln.Addr(), srv.Caps())

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight requests, then close the index (which stops the
	// maintainer after a final reclaim).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("bfserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = hs.Shutdown(ctx)
		cancel()
	case err = <-done:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
	}
	if cerr := ix.Close(); err == nil {
		err = cerr
	}
	fail(err)

	served := srv.Served()
	fmt.Printf("bfserve: served %d requests (%d errors, %d backpressure rejections), %d tuples\n",
		served.Requests, served.Errors, served.Rejected, served.TuplesSent)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfserve: %v\n", err)
		os.Exit(1)
	}
}
