// Command bfinspect builds a BF-Tree (and the B+-Tree baseline) over a
// generated dataset and prints the geometry the paper's model predicts
// alongside what the implementation actually built: heights, leaf
// counts, sizes, keys per leaf, and the capacity gain.
//
// Usage:
//
//	bfinspect -tuples 262144 -fpp 1e-3
//	bfinspect -tuples 262144 -fpp 0.2 -field att1
package main

import (
	"flag"
	"fmt"
	"os"

	"bftree/internal/bptree"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/model"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

func main() {
	var (
		tuples = flag.Uint64("tuples", 262144, "synthetic relation size in tuples")
		fpp    = flag.Float64("fpp", 1e-3, "false positive probability")
		field  = flag.String("field", "pk", "indexed field: pk | att1")
		seed   = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	dataStore := pagestore.New(device.New(device.Memory, 4096))
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	syn, err := workload.GenerateSynthetic(dataStore, *tuples, 11, *seed)
	fail(err)

	fieldIdx := workload.SyntheticSchema.FieldIndex(*field)
	if fieldIdx < 0 {
		fmt.Fprintf(os.Stderr, "bfinspect: unknown field %q (pk or att1)\n", *field)
		os.Exit(2)
	}
	avgCard := 1.0
	if fieldIdx == 1 {
		avgCard = float64(*tuples) / float64(syn.NumKeys)
	}

	bf, err := core.BulkLoad(idxStore, syn.File, fieldIdx, core.Options{FPP: *fpp})
	fail(err)
	entries, err := bptree.PKEntries(syn.File, fieldIdx)
	fail(err)
	bp, err := bptree.BulkLoad(idxStore, entries, 1.0)
	fail(err)

	p := model.Params{
		PageSize:  4096,
		TupleSize: 256,
		NoTuples:  float64(*tuples),
		AvgCard:   avgCard,
		KeySize:   8,
		PtrSize:   8,
		FPP:       *fpp,
		IdxIO:     1, DataIO: 50, SeqDtIO: 5,
	}
	fail(p.Validate())

	fmt.Printf("relation: %d tuples, %d pages (%d MB), field %s (avg cardinality %.1f)\n\n",
		syn.File.NumTuples(), syn.File.NumPages(), syn.File.SizeBytes()/(1<<20), *field, avgCard)

	fmt.Printf("%-28s %12s %12s\n", "metric", "model", "built")
	row := func(name string, modelV, builtV interface{}) {
		fmt.Printf("%-28s %12v %12v\n", name, modelV, builtV)
	}
	row("B+-Tree leaves", int(p.BPLeaves()), bp.NumLeaves())
	row("B+-Tree height", int(p.BPHeight()), bp.Height())
	row("B+-Tree size (pages)", int(p.BPSize()/4096), bp.NumNodes())
	row("BF keys per leaf (Eq 5)", int(p.BFKeysPerPage()), bf.Geometry().KeysPerLeaf)
	row("BF-Tree leaves (Eq 6)", int(p.BFLeaves()+0.5)+1, bf.NumLeaves())
	row("BF-Tree height (Eq 7)", int(p.BFHeight()), bf.Height())
	row("BF-Tree size (pages)", int(p.BFSize()/4096)+1, bf.NumNodes())
	row("data pages per leaf (Eq 8)", int(p.BFPagesLeaf()), "-")
	fmt.Printf("\ncapacity gain: model %.2fx, built %.2fx\n",
		p.BPSize()/p.BFSize(), float64(bp.NumNodes())/float64(bf.NumNodes()))
	fmt.Printf("model probe cost (idxIO=1,dataIO=50,seqDtIO=5): B+ %.1f, BF %.1f\n",
		p.BPCost(), p.BFCost())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfinspect:", err)
		os.Exit(1)
	}
}
