// Command bfbench runs the paper's experiments and prints the tables
// and figure series of the evaluation section.
//
// Usage:
//
//	bfbench -list                      # show experiment ids
//	bfbench -exp table2                # run one experiment
//	bfbench -exp all                   # run everything
//	bfbench -exp fig5a -scale paper    # the paper's 1 GB relation
//	bfbench -exp fig13 -tuples 500000  # custom synthetic size
//	bfbench -exp table3 -probes 5000   # more probes per measurement
//	bfbench -exp churn                 # self-maintaining mode under 1M-op churn
//	bfbench -exp fig5a -index=bptree   # point lookups on another backend
//	bfbench -exp point-lookup -index=each  # cross-backend comparison
//	bfbench -exp shard-scale -skew 1.2 # sharded forest under skewed writers
//	bfbench -exp mixed-workload -index=each -json .  # preset matrix, BENCH_mixed.json
//	bfbench -exp mixed-workload -mix oltp -skew 1.4  # one preset, hotter zipf cells
//	bfbench -exp compaction-stall -json .  # full vs incremental compaction, BENCH_compact.json
//
// The -index flag selects the registered backend the point-lookup
// experiments probe (any name from the bftree/index registry); the
// point-lookup and mixed-workload experiments additionally accept
// "each" to walk the whole registry. No experiment carries per-backend
// code — selection happens in the unified index API.
//
// The workload-shaping flags (-index, -skew, -mix, -json) apply only to
// the experiments that declare them (bench.ExperimentFlags): setting
// one for a single experiment that ignores it is an error; with
// `-exp all` it becomes a warning naming the experiments that consume
// it.
//
// Scale notes: the default scale shrinks the paper's datasets ~16x so a
// full run stays interactive; ratios (capacity gain, normalized response
// time, false reads per probe) are scale-invariant. -scale paper uses
// the full 1 GB relation and TPCH SF1 sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"bftree/index"
	"bftree/internal/bench"
	"bftree/internal/workload"
)

// eachExperiments are the registry-walking experiments -index=each
// applies to; the per-figure sweeps need one concrete backend.
var eachExperiments = map[string]bool{
	"point-lookup":   true,
	"mixed-workload": true,
	"serve-load":     true,
}

// flagConsumers lists the experiments consuming a workload-shaping flag,
// for the `-exp all` warning.
func flagConsumers(f string) []string {
	var names []string
	for _, n := range bench.ExperimentNames() {
		for _, c := range bench.ExperimentFlags(n) {
			if c == f {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = flag.String("scale", "default", "dataset scale: default | paper")
		tuples  = flag.Uint64("tuples", 0, "override synthetic relation size in tuples")
		probes  = flag.Int("probes", 0, "override probes per measurement")
		seed    = flag.Int64("seed", 0, "override workload seed")
		backend = flag.String("index", "", "index backend for point-lookup experiments (registry name, or 'each')")
		skew    = flag.Float64("skew", 0, "Zipfian skew for experiments that support it (shard-scale, mixed-workload); ≤ 1 is uniform")
		mixName = flag.String("mix", "", "mixed-workload preset (oltp|olap|reporting|timeseries); empty runs all presets")
		jsonDir = flag.String("json", "", "directory for experiments' JSON artifacts (each experiment's canonical BENCH_<name>.json; see the README artifact table)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bfbench: -exp required (or -list); e.g. bfbench -exp table2")
		os.Exit(2)
	}

	s := bench.DefaultScale()
	if *scale == "paper" {
		s = bench.PaperScale()
	} else if *scale != "default" {
		fmt.Fprintf(os.Stderr, "bfbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *tuples > 0 {
		s.SyntheticTuples = *tuples
	}
	if *probes > 0 {
		s.Probes = *probes
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.JSONDir = *jsonDir
	s.Skew = *skew
	s.Mix = *mixName
	if *mixName != "" {
		if _, err := workload.MixByName(*mixName); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *backend != "" {
		if *backend == "each" {
			if !eachExperiments[*exp] {
				fmt.Fprintln(os.Stderr, "bfbench: -index=each only applies to -exp point-lookup, mixed-workload or serve-load; pick one backend for other experiments")
				os.Exit(2)
			}
		} else if _, ok := index.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "bfbench: unknown index backend %q (have %v, or 'each' for point-lookup/mixed-workload/serve-load)\n",
				*backend, index.Backends())
			os.Exit(2)
		}
		s.Index = *backend
	}

	// A workload-shaping override that the selected experiment ignores
	// would silently measure something other than what was asked for:
	// reject it for a single experiment, warn under `-exp all` (where
	// some experiments consume it and the rest ignore it by design).
	overrides := map[string]bool{
		"index": *backend != "",
		"skew":  *skew != 0,
		"mix":   *mixName != "",
		"json":  *jsonDir != "",
	}
	if *exp == "all" {
		for _, f := range []string{"index", "skew", "mix", "json"} {
			if overrides[f] {
				fmt.Fprintf(os.Stderr, "bfbench: warning: -%s applies only to %v; other experiments ignore it\n",
					f, flagConsumers(f))
			}
		}
	} else {
		consumed := map[string]bool{}
		for _, f := range bench.ExperimentFlags(*exp) {
			consumed[f] = true
		}
		for _, f := range []string{"index", "skew", "mix", "json"} {
			if overrides[f] && !consumed[f] {
				fmt.Fprintf(os.Stderr, "bfbench: -%s is not consumed by -exp %s (experiments using it: %v)\n",
					f, *exp, flagConsumers(f))
				os.Exit(2)
			}
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		start := time.Now()
		t, err := bench.Run(name, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
