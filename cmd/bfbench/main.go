// Command bfbench runs the paper's experiments and prints the tables
// and figure series of the evaluation section.
//
// Usage:
//
//	bfbench -list                      # show experiment ids
//	bfbench -exp table2                # run one experiment
//	bfbench -exp all                   # run everything
//	bfbench -exp fig5a -scale paper    # the paper's 1 GB relation
//	bfbench -exp fig13 -tuples 500000  # custom synthetic size
//	bfbench -exp table3 -probes 5000   # more probes per measurement
//	bfbench -exp churn                 # self-maintaining mode under 1M-op churn
//	bfbench -exp fig5a -index=bptree   # point lookups on another backend
//	bfbench -exp point-lookup -index=each  # cross-backend comparison
//	bfbench -exp shard-scale -skew 1.2 # sharded forest under skewed writers
//
// The -index flag selects the registered backend the point-lookup
// experiments probe (any name from the bftree/index registry); the
// point-lookup experiment additionally accepts "each" to walk the whole
// registry. No experiment carries per-backend code — selection happens
// in the unified index API.
//
// Scale notes: the default scale shrinks the paper's datasets ~16x so a
// full run stays interactive; ratios (capacity gain, normalized response
// time, false reads per probe) are scale-invariant. -scale paper uses
// the full 1 GB relation and TPCH SF1 sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bftree/index"
	"bftree/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = flag.String("scale", "default", "dataset scale: default | paper")
		tuples  = flag.Uint64("tuples", 0, "override synthetic relation size in tuples")
		probes  = flag.Int("probes", 0, "override probes per measurement")
		seed    = flag.Int64("seed", 0, "override workload seed")
		backend = flag.String("index", "", "index backend for point-lookup experiments (registry name, or 'each')")
		skew    = flag.Float64("skew", 0, "Zipfian skew for experiments that support it (shard-scale); ≤ 1 is uniform")
		jsonDir = flag.String("json", "", "directory for experiments' JSON records (BENCH_scan.json, BENCH_batch.json, BENCH_point.json)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bfbench: -exp required (or -list); e.g. bfbench -exp table2")
		os.Exit(2)
	}

	s := bench.DefaultScale()
	if *scale == "paper" {
		s = bench.PaperScale()
	} else if *scale != "default" {
		fmt.Fprintf(os.Stderr, "bfbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *tuples > 0 {
		s.SyntheticTuples = *tuples
	}
	if *probes > 0 {
		s.Probes = *probes
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	s.JSONDir = *jsonDir
	s.Skew = *skew
	if *backend != "" {
		if *backend == "each" {
			// Only the registry-walking experiment accepts "each"; the
			// per-figure sweeps need one concrete backend.
			if *exp != "point-lookup" {
				fmt.Fprintln(os.Stderr, "bfbench: -index=each only applies to -exp point-lookup; pick one backend for other experiments")
				os.Exit(2)
			}
		} else if _, ok := index.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "bfbench: unknown index backend %q (have %v, or 'each' for point-lookup)\n",
				*backend, index.Backends())
			os.Exit(2)
		}
		s.Index = *backend
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		start := time.Now()
		t, err := bench.Run(name, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
