// Command bfgen generates the three evaluation datasets (synthetic
// relation R, TPCH-like lineitem, smart-home readings) and prints their
// statistics, or dumps sample tuples as CSV for inspection.
//
// Usage:
//
//	bfgen -dataset synthetic -tuples 100000
//	bfgen -dataset tpch -tuples 375000 -dates 156 -dump 20
//	bfgen -dataset shd -tuples 250000
package main

import (
	"flag"
	"fmt"
	"os"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "synthetic", "synthetic | tpch | shd")
		tuples  = flag.Uint64("tuples", 100000, "number of tuples")
		dates   = flag.Int("dates", 156, "distinct ship dates (tpch)")
		avgCard = flag.Int("avgcard", 11, "average ATT1 cardinality (synthetic)")
		seed    = flag.Int64("seed", 42, "generator seed")
		dump    = flag.Int("dump", 0, "print the first N tuples as CSV")
	)
	flag.Parse()

	store := pagestore.New(device.New(device.Memory, 4096))
	var (
		file   *heapfile.File
		schema heapfile.Schema
	)
	switch *dataset {
	case "synthetic":
		syn, err := workload.GenerateSynthetic(store, *tuples, *avgCard, *seed)
		fail(err)
		file, schema = syn.File, workload.SyntheticSchema
		fmt.Printf("synthetic relation R: %d tuples, %d pages (%d MB), %d distinct ATT1 values (avg card %.1f)\n",
			file.NumTuples(), file.NumPages(), file.SizeBytes()/(1<<20),
			syn.NumKeys, float64(file.NumTuples())/float64(syn.NumKeys))
	case "tpch":
		tp, err := workload.GenerateTPCH(store, *tuples, *dates, *seed)
		fail(err)
		file, schema = tp.File, workload.TPCHSchema
		fmt.Printf("tpch lineitem: %d tuples, %d pages (%d MB), %d ship dates (avg card %.0f)\n",
			file.NumTuples(), file.NumPages(), file.SizeBytes()/(1<<20),
			len(tp.DateCards), float64(file.NumTuples())/float64(len(tp.DateCards)))
	case "shd":
		shd, err := workload.GenerateSHD(store, *tuples, *seed)
		fail(err)
		file, schema = shd.File, workload.SHDSchema
		fmt.Printf("smart-home dataset: %d tuples, %d pages (%d MB), %d timestamps, cardinality mean %.1f max %d\n",
			file.NumTuples(), file.NumPages(), file.SizeBytes()/(1<<20),
			len(shd.Cards), shd.MeanCard, shd.MaxCard)
	default:
		fmt.Fprintf(os.Stderr, "bfgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *dump > 0 {
		for i, f := range schema.Fields {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(f.Name)
		}
		fmt.Println()
		n := 0
		file.Scan(func(_ device.PageID, _ int, tup []byte) bool {
			for i := range schema.Fields {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Print(schema.Get(tup, i))
			}
			fmt.Println()
			n++
			return n < *dump
		})
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfgen:", err)
		os.Exit(1)
	}
}
