package bftree_test

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"bftree"
)

var schema = bftree.Schema{
	TupleSize: 64,
	Fields:    []bftree.Field{{Name: "ts", Offset: 0}, {Name: "value", Offset: 8}},
}

func buildRelation(t *testing.T, store *bftree.Store, n int) *bftree.File {
	t.Helper()
	b, err := bftree.NewRelationBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i*3)) // sparse ordered keys
		binary.BigEndian.PutUint64(tup[8:16], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPublicAPIEndToEnd(t *testing.T) {
	dataDev := bftree.NewDevice(bftree.HDD, 4096)
	idxDev := bftree.NewDevice(bftree.SSD, 4096)
	dataStore := bftree.NewStore(dataDev, 0)
	idxStore := bftree.NewStore(idxDev, 0)

	file := buildRelation(t, dataStore, 10000)
	idx, err := bftree.BulkLoad(idxStore, file, "ts", bftree.Options{FPP: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.SizeBytes() == 0 || idx.Height() < 1 {
		t.Fatal("index geometry wrong")
	}

	// Hits.
	for _, k := range []uint64{0, 3, 2997, 29997} {
		res, err := idx.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d: %d tuples", k, len(res.Tuples))
		}
	}
	// Miss (in-domain gap).
	res, err := idx.Search(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatal("gap key matched")
	}
	// Range scan.
	rng, err := idx.RangeScan(30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rng.Tuples) != 11 { // keys 30,33,...,60
		t.Fatalf("range returned %d tuples, want 11", len(rng.Tuples))
	}
	// Device accounting is visible through the facade.
	if idxDev.Stats().Reads() == 0 || dataDev.Stats().Reads() == 0 {
		t.Error("device stats should record the probes")
	}
}

func TestUnknownField(t *testing.T) {
	store := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	file := buildRelation(t, store, 100)
	_, err := bftree.BulkLoad(store, file, "nope", bftree.Options{FPP: 0.01})
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, ok := err.(*bftree.UnknownFieldError); !ok {
		t.Fatalf("want UnknownFieldError, got %T", err)
	}
	if !errors.Is(err, bftree.ErrUnknownField) {
		t.Error("errors.Is(err, ErrUnknownField) must match, like the other sentinels")
	}
	if err.Error() == "" {
		t.Error("error must format")
	}
}

func TestCachedStoreFacade(t *testing.T) {
	dev := bftree.NewDevice(bftree.HDD, 4096)
	store := bftree.NewStore(dev, 128)
	file := buildRelation(t, store, 1000)
	idx, err := bftree.BulkLoad(store, file, "ts", bftree.Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated probes of the same key hit the cache: the second batch
	// must charge fewer device reads than the first. Drop the cache
	// first — the build's write-through already warmed it.
	store.DropCache()
	dev.ResetStats()
	if _, err := idx.SearchFirst(300); err != nil {
		t.Fatal(err)
	}
	cold := dev.Stats().Reads()
	dev.ResetStats()
	if _, err := idx.SearchFirst(300); err != nil {
		t.Fatal(err)
	}
	warm := dev.Stats().Reads()
	if warm >= cold {
		t.Errorf("warm probe read %d pages, cold %d", warm, cold)
	}
}

func TestCountingFilterFacade(t *testing.T) {
	store := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	file := buildRelation(t, store, 2000)
	idx, err := bftree.BulkLoad(store, file, "ts", bftree.Options{FPP: 0.01, Filter: bftree.CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.SearchFirst(30)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("counting-filter index broken")
	}
}

func TestFacadePersistenceAndBuffer(t *testing.T) {
	idxStore := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	dataStore := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	file := buildRelation(t, dataStore, 3000)
	idx, err := bftree.BulkLoad(idxStore, file, "ts", bftree.Options{FPP: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	meta := idx.MarshalMeta()
	back, err := bftree.Open(idxStore, file, meta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.SearchFirst(300)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("reopened facade index broken")
	}

	var buf *bftree.BufferedInserter = back.NewBufferedInserter(16)
	if err := buf.Insert(300, file.PageOf(100)); err != nil {
		t.Fatal(err)
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := back.Rebuild(); err != nil {
		t.Fatal(err)
	}
	res, err = back.SearchFirst(300)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("rebuild through facade broken")
	}
}

// TestFacadeSelfMaintaining drives the self-maintaining mode through
// the public API: an auto-maintained tree compacts on delete drift, the
// stats surface it, and Close drains the maintainer.
func TestFacadeSelfMaintaining(t *testing.T) {
	idxStore := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	dataStore := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	file := buildRelation(t, dataStore, 6000)
	idx, err := bftree.BulkLoad(idxStore, file, "ts", bftree.Options{
		FPP: 1e-2,
		Maintenance: bftree.MaintenancePolicy{
			Mode:            bftree.MaintenanceAuto,
			FPPThreshold:    0.05,
			ReclaimInterval: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.MaintenanceStats().Running {
		t.Fatal("auto mode did not start the maintainer")
	}
	// Standard-filter deletes accrue Section 7 drift past the threshold.
	for i := 0; i < 400; i++ {
		k := uint64(i * 3)
		if err := idx.Delete(k, file.PageOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && idx.MaintenanceStats().Compactions == 0 {
		time.Sleep(time.Millisecond)
	}
	if st := idx.MaintenanceStats(); st.Compactions == 0 {
		t.Fatalf("no auto-compaction through the facade: %+v", st)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	st := idx.MaintenanceStats()
	if st.Running || st.LimboPages != 0 {
		t.Fatalf("Close did not drain the maintainer: %+v", st)
	}
	res, err := idx.SearchFirst(3000)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("closed self-maintained index broken")
	}
}
