module bftree

go 1.24
